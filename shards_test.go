package inpg_test

// Differential checks for the spatially sharded engine: Config.Shards is
// an execution strategy, not a simulation parameter, so a sharded run must
// be bit-identical to the classic single-shard engine — same results, same
// ordered message-level event stream, same metrics counters — for every
// shard count, lock kind, seed and fault rate, and identical to the
// always-tick reference mode on top.

import (
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"inpg"
	"inpg/internal/fault"
	"inpg/internal/trace"
)

// shardedRun executes one configuration under the given shard count with
// full protocol tracing and returns the results plus the ordered event
// stream.
func shardedRun(t *testing.T, cfg inpg.Config, shards int) (*inpg.Results, []trace.Event) {
	t.Helper()
	cfg.Shards = shards
	cfg.TraceCapacity = 1 << 19
	sys, err := inpg.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	tr := sys.Trace()
	if tr.Len() >= 1<<19 {
		t.Fatalf("trace overflowed its ring (%d events): enlarge TraceCapacity so delivery order is fully compared", tr.Len())
	}
	return res, tr.Events()
}

// diffRuns asserts two runs produced identical results and event streams.
func diffRuns(t *testing.T, label string, res *inpg.Results, events []trace.Event, base *inpg.Results, baseEvents []trace.Event) {
	t.Helper()
	if !reflect.DeepEqual(res, base) {
		t.Fatalf("%s: results diverge:\ngot:  %+v\nbase: %+v", label, res, base)
	}
	if len(events) != len(baseEvents) {
		t.Fatalf("%s: %d trace events, want %d", label, len(events), len(baseEvents))
	}
	for i := range events {
		if events[i] != baseEvents[i] {
			t.Fatalf("%s: event %d diverges:\ngot:  %+v\nbase: %+v", label, i, events[i], baseEvents[i])
		}
	}
}

// TestShardedRunBitIdentical pins the tentpole guarantee: for every lock
// kind, three seeds, the full iNPG+OCOR protocol and a nonzero fault rate,
// runs at 2, 4 and 8 shards are bit-identical to the single-shard engine.
func TestShardedRunBitIdentical(t *testing.T) {
	for _, lk := range inpg.LockKinds {
		lk := lk
		t.Run(lk.String(), func(t *testing.T) {
			for _, seed := range []int64{1, 7, 1009} {
				cfg := inpg.DefaultConfig()
				cfg.Lock = lk
				cfg.Mechanism = inpg.INPGOCOR
				cfg.CSPerThread = 2
				cfg.Seed = seed
				cfg.Fault = fault.AtRate(0.001, seed^0x55)

				base, baseEvents := shardedRun(t, cfg, 1)
				for _, shards := range []int{2, 4, 8} {
					res, events := shardedRun(t, cfg, shards)
					diffRuns(t, lk.String(), res, events, base, baseEvents)
				}
			}
		})
	}
}

// TestShardedRunMatchesCompatMode closes the triangle: sharded runs are
// also identical to the always-tick reference scheduler, in both
// combinations (compat single-shard, compat sharded).
func TestShardedRunMatchesCompatMode(t *testing.T) {
	cfg := inpg.DefaultConfig()
	cfg.Lock = inpg.LockMCS
	cfg.Mechanism = inpg.INPGOCOR
	cfg.CSPerThread = 2
	cfg.Seed = 7
	cfg.Fault = fault.AtRate(0.001, 42)

	base, baseEvents := shardedRun(t, cfg, 1)

	compat := cfg
	compat.AlwaysTick = true
	res, events := shardedRun(t, compat, 1)
	diffRuns(t, "compat/1-shard", res, events, base, baseEvents)
	res, events = shardedRun(t, compat, 8)
	diffRuns(t, "compat/8-shard", res, events, base, baseEvents)

	res, events = shardedRun(t, cfg, 8)
	diffRuns(t, "active/8-shard", res, events, base, baseEvents)
}

// stripShardLines removes the shard.* instrument lines a sharded run adds
// to its snapshot (they describe the execution strategy, and one of them —
// barrier wait time — is wall-clock).
func stripShardLines(text string) string {
	kept := make([]string, 0, 64)
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "shard.") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestShardedMetricsSnapshotsIdentical checks that every simulation-domain
// counter in the telemetry snapshot is byte-identical across shard counts;
// only the shard.* execution-telemetry block may differ.
func TestShardedMetricsSnapshotsIdentical(t *testing.T) {
	run := func(shards int) string {
		cfg := inpg.DefaultConfig()
		cfg.Lock = inpg.LockTAS
		cfg.Mechanism = inpg.INPGOCOR
		cfg.CSPerThread = 2
		cfg.Seed = 3
		cfg.Metrics = true
		cfg.Shards = shards
		sys, err := inpg.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return sys.MetricsSnapshot().Text()
	}
	base := run(1)
	if strings.Contains(base, "shard.") {
		t.Fatal("single-shard snapshot must not register shard instruments")
	}
	for _, shards := range []int{2, 8} {
		if got := stripShardLines(run(shards)); got != base {
			t.Fatalf("%d shards: simulation-domain snapshot diverged\ngot:\n%s\nbase:\n%s", shards, got, base)
		}
	}
}

// TestShardedTeardownLeaksNoGoroutines aborts sharded runs two ways — a
// wall-clock timeout and a clean completion — and requires every shard
// worker to have exited afterwards. The race detector patrols the joins.
func TestShardedTeardownLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	wait := func(label string) {
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > base {
			if time.Now().After(deadline) {
				t.Fatalf("%s: %d goroutines live, started with %d — shard workers leaked", label, runtime.NumGoroutine(), base)
			}
			time.Sleep(time.Millisecond)
		}
	}

	cfg := inpg.DefaultConfig()
	cfg.Lock = inpg.LockQSL
	cfg.Mechanism = inpg.INPG
	cfg.CSPerThread = 2
	cfg.Seed = 5
	cfg.Shards = 8
	cfg.WallTimeBudget = time.Nanosecond // unmeetable: the run must time out
	sys, err := inpg.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err == nil {
		t.Fatal("a nanosecond wall budget should have timed the run out")
	}
	wait("timeout abort")

	cfg.WallTimeBudget = 0
	sys, err = inpg.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	wait("clean completion")
}

// TestShardsConfigValidation covers the config surface: negative counts
// are rejected, oversized counts clamp to the mesh height, and Shards is
// excluded from the config digest (it is not a simulation parameter).
func TestShardsConfigValidation(t *testing.T) {
	cfg := inpg.DefaultConfig()
	cfg.Shards = -1
	if _, err := inpg.New(cfg); err == nil {
		t.Fatal("negative Shards must be rejected")
	}

	cfg.Shards = 1000 // clamps to MeshHeight stripes
	sys, err := inpg.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.ShardCount(); got != cfg.MeshHeight {
		t.Fatalf("ShardCount = %d for oversized request, want %d", got, cfg.MeshHeight)
	}

	a, b := inpg.DefaultConfig(), inpg.DefaultConfig()
	b.Shards = 8
	if a.Digest() != b.Digest() {
		t.Fatal("Shards must not contribute to the config digest: it does not change simulation output")
	}
}
